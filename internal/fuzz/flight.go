package fuzz

import (
	"fmt"
	"os"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
)

// FlightReplay re-runs the program on a fresh chip with the flight
// recorder armed and returns the drained rings — the last `events`
// scheduler/pipeline records per domain leading up to the divergence
// (or the end of the run).  A failed run is not an error here: the
// dump is the point, and a reproducer that errors mid-run still leaves
// its final cycles in the rings.
func FlightReplay(p *prog.Program, in arch.Input, cores, events int) (*flight.Dump, error) {
	comp, err := compose.Rect(0, 0, cores)
	if err != nil {
		return nil, err
	}
	chip := sim.New(sim.DefaultOptions())
	chip.EnableFlight(events)
	proc, err := chip.AddProc(comp, p)
	if err != nil {
		return nil, err
	}
	proc.Regs = in.Regs
	if len(in.Mem) > 0 {
		proc.Mem.WriteBytes(in.MemBase, in.Mem)
	}
	mc := in.MaxCycles
	if mc == 0 {
		mc = arch.DefaultMaxCycles
	}
	chip.Run(mc) //nolint:errcheck // a diverging run may legitimately fail; the rings are what we came for
	return chip.FlightDump(), nil
}

// writeFlightSidecar replays the divergence on the diverging
// composition and writes the ring dump as JSON next to the .tfa
// reproducer.
func writeFlightSidecar(tfaPath string, d *Divergence) error {
	p, err := d.Spec.Build()
	if err != nil {
		return fmt.Errorf("flight sidecar: rebuild spec: %w", err)
	}
	dump, err := FlightReplay(p, d.Spec.Input(), d.Cores, 0)
	if err != nil {
		return fmt.Errorf("flight sidecar: replay: %w", err)
	}
	f, err := os.Create(tfaPath + ".flight.json")
	if err != nil {
		return fmt.Errorf("flight sidecar: %w", err)
	}
	defer f.Close()
	if err := dump.WriteJSON(f); err != nil {
		return fmt.Errorf("flight sidecar: %w", err)
	}
	return nil
}
