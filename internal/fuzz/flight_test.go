package fuzz

import (
	"os"
	"strings"
	"testing"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/edgegen"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/prog"
)

// buggySim embeds the real timing executor and corrupts its result, so
// a forced divergence is attributed to a sim composition (Cores > 0)
// and DumpTFA must attach a flight sidecar.
type buggySim struct{ arch.Sim }

func (b buggySim) Run(p *prog.Program, in arch.Input) (arch.State, error) {
	st, err := b.Sim.Run(p, in)
	if err != nil {
		return st, err
	}
	st.Regs[7] ^= 1 // the injected bug
	return st, nil
}

// TestForcedDivergenceCarriesFlightDump is the acceptance check for the
// flight/fuzz integration: a forced sim divergence, once shrunk and
// dumped, leaves a parseable flight-recorder sidecar next to the .tfa
// reproducer with at least one commit record in it.
func TestForcedDivergenceCarriesFlightDump(t *testing.T) {
	h := &Harness{Execs: []arch.Executor{arch.Functional{}, buggySim{arch.Sim{Cores: 2}}}}
	d, err := h.Check(edgegen.GenSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("injected sim bug not detected")
	}
	if d.Cores != 2 {
		t.Fatalf("Divergence.Cores = %d, want 2 (embedded arch.Sim lost its composition)", d.Cores)
	}
	d = h.Shrink(d)
	path, err := DumpTFA(d)
	if err != nil {
		t.Fatalf("DumpTFA: %v", err)
	}
	defer os.Remove(path)
	side := path + ".flight.json"
	defer os.Remove(side)
	f, err := os.Open(side)
	if err != nil {
		t.Fatalf("flight sidecar missing: %v", err)
	}
	defer f.Close()
	dump, err := flight.ParseDump(f)
	if err != nil {
		t.Fatalf("sidecar does not parse: %v", err)
	}
	if len(dump.Rings) == 0 {
		t.Fatal("sidecar has no rings")
	}
	if len(dump.Records(flight.KCommit)) == 0 {
		t.Error("sidecar has no commit records; replay recorded nothing")
	}
	if !strings.HasSuffix(side, ".tfa.flight.json") {
		t.Errorf("sidecar path %q does not sit next to the reproducer", side)
	}
}

// TestFlightReplaySurvivesFailingRun pins that FlightReplay returns a
// dump even for a program whose timing run errors out (here: a cycle
// budget too small to finish) — the rings are the post-mortem.
func TestFlightReplaySurvivesFailingRun(t *testing.T) {
	spec := edgegen.GenSpec(3)
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := spec.Input()
	in.MaxCycles = 10 // guaranteed mid-run stop
	dump, err := FlightReplay(p, in, 1, 128)
	if err != nil {
		t.Fatalf("FlightReplay: %v", err)
	}
	if dump == nil || len(dump.Rings) == 0 {
		t.Fatal("no dump from a failing run; the post-mortem path is broken")
	}
}
