package tflex

import (
	"github.com/clp-sim/tflex/internal/asm"
)

// Assemble parses the textual EDGE assembly language into a laid-out
// program.  See internal/asm for the statement grammar; the entry block
// is the first one defined.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders a program as an ISA-level listing: final
// instruction placement, target fields, LSIDs and predicates.
func Disassemble(p *Program) string { return asm.Disassemble(p) }
