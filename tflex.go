// Package tflex is the public API of the TFlex composable-lightweight-
// processor (CLP) simulator, a from-scratch reproduction of
// "Composable Lightweight Processors" (MICRO 2007).
//
// A CLP is a chip of simple, narrow-issue cores that can be aggregated
// dynamically into larger single-threaded processors without recompiling
// the application.  The simulator models the TFlex microarchitecture: an
// EDGE (Explicit Data Graph Execution) block-atomic ISA, fully distributed
// fetch/prediction/execution/memory/commit protocols over a mesh
// interconnect, a composable next-block predictor, address-interleaved L1
// caches and LSQ banks with NACK overflow handling, a shared S-NUCA L2
// with directory coherence, and area/power models.
//
// Quick start:
//
//	b := tflex.NewBuilder()
//	bb := b.Block("loop")
//	i := bb.Read(2)
//	bb.Write(3, bb.Add(bb.Read(3), i))
//	i2 := bb.AddI(i, 1)
//	bb.Write(2, i2)
//	bb.BranchIf(bb.OpI(tflex.OpLt, i2, 100), "loop", "done")
//	b.Block("done").Halt()
//	program := b.MustProgram("loop")
//
//	res, err := tflex.Run(program, tflex.RunConfig{Cores: 8})
//
// The same binary runs unmodified on any composition from 1 to 32 cores.
package tflex

import (
	"fmt"
	"os"

	"github.com/clp-sim/tflex/internal/arch"
	"github.com/clp-sim/tflex/internal/compose"
	"github.com/clp-sim/tflex/internal/critpath"
	"github.com/clp-sim/tflex/internal/exec"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/isa"
	"github.com/clp-sim/tflex/internal/obs"
	"github.com/clp-sim/tflex/internal/prog"
	"github.com/clp-sim/tflex/internal/sim"
	"github.com/clp-sim/tflex/internal/telemetry"
	"github.com/clp-sim/tflex/internal/trips"
)

// Core ISA and program-construction types.
type (
	// Program is a laid-out EDGE block program.
	Program = prog.Program
	// Builder constructs programs block by block.
	Builder = prog.Builder
	// BlockBuilder emits dataflow into one block.
	BlockBuilder = prog.BlockBuilder
	// Ref is an SSA-style value reference inside a block.
	Ref = prog.Ref
	// Opcode is an EDGE operation.
	Opcode = isa.Opcode
	// Block is one EDGE code block.
	Block = isa.Block

	// Processor describes a composed logical processor's core set.
	Processor = compose.Processor
	// CoreParams are the per-core microarchitectural parameters (Table 1).
	CoreParams = compose.CoreParams
	// Options configure the chip model.
	Options = sim.Options
	// Chip is the simulated 32-core CLP.
	Chip = sim.Chip
	// Proc is one running logical processor.
	Proc = sim.Proc
	// Stats are per-processor simulation statistics.
	Stats = sim.Stats
	// Memory is the byte-addressable architectural memory.
	Memory = exec.PageMem
	// Machine executes programs architecturally (no timing).
	Machine = exec.Machine
	// BlockEvent records one dynamic block's pipeline lifetime.
	BlockEvent = sim.BlockEvent

	// ArchState is the unified architectural-state contract every
	// executor implements (see internal/arch): final registers, memory
	// image digest, retired-block count and committed-store-stream
	// digest.  Two runs of the same program with the same initial state
	// must produce identical ArchState on any composition and engine.
	ArchState = arch.State
	// ArchExecutor runs a program to completion and reports ArchState;
	// the differential fuzz harness drives a set of these.
	ArchExecutor = arch.Executor

	// Metrics is the chip-wide telemetry registry: typed counters,
	// gauges and latency histograms under hierarchical names such as
	// "proc0.blocks.committed" or "noc.opnd.link.3.4.flits".
	Metrics = telemetry.Registry
	// MetricsSnapshot is a flat name→value capture of a registry.
	MetricsSnapshot = telemetry.Snapshot
	// Trace collects Chrome trace-event spans (the JSON loaded by
	// chrome://tracing and Perfetto).
	Trace = telemetry.Trace
	// Sampler records cycle-sampled time series of chip occupancies.
	Sampler = telemetry.Sampler

	// CritPathSummary aggregates critical-path attribution over
	// committed blocks: total attributed cycles by category, with the
	// invariant that each block's categories sum to its latency exactly.
	CritPathSummary = critpath.Summary
	// CritPathBreakdown is one block's attributed cycles by category.
	CritPathBreakdown = critpath.Breakdown
	// CritPathCategory names one attribution category.
	CritPathCategory = critpath.Category
	// Observer is the live observability server: /metrics, /critpath,
	// /events (SSE), /domains, /flight and /debug/pprof over plain
	// net/http.
	Observer = obs.Server

	// FlightDump is a drained flight recorder: the surviving ring
	// records of every event domain, renderable as text, JSON or a
	// Chrome trace.
	FlightDump = flight.Dump
	// DomainStats are one event domain's scheduler statistics: windows
	// run, events executed, barrier slack, shared-section grants/waits
	// and deferred invalidations delivered.
	DomainStats = flight.DomainStats
)

// NumCritPathCategories is the number of attribution categories.
const NumCritPathCategories = critpath.NumCategories

// NewObserver returns an idle observability server; call Start(addr)
// and pass it as RunConfig.Observe.
func NewObserver() *Observer { return obs.New() }

// NewTrace returns an empty Chrome trace collector, ready for
// RunConfig.ChromeTrace.
func NewTrace() *Trace { return &telemetry.Trace{} }

// Commonly used opcodes, re-exported for program construction.
const (
	OpAdd  = isa.OpAdd
	OpSub  = isa.OpSub
	OpMul  = isa.OpMul
	OpDiv  = isa.OpDiv
	OpDivU = isa.OpDivU
	OpMod  = isa.OpMod
	OpAnd  = isa.OpAnd
	OpOr   = isa.OpOr
	OpXor  = isa.OpXor
	OpShl  = isa.OpShl
	OpShr  = isa.OpShr
	OpSra  = isa.OpSra
	OpEq   = isa.OpEq
	OpNe   = isa.OpNe
	OpLt   = isa.OpLt
	OpLe   = isa.OpLe
	OpLtU  = isa.OpLtU
	OpLeU  = isa.OpLeU
	OpFAdd = isa.OpFAdd
	OpFSub = isa.OpFSub
	OpFMul = isa.OpFMul
	OpFDiv = isa.OpFDiv
	OpFLt  = isa.OpFLt
	OpIToF = isa.OpIToF
	OpFToI = isa.OpFToI
)

// NumCores is the number of physical cores on the chip (a 4x8 array).
const NumCores = compose.NumCores

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return prog.NewBuilder() }

// NewMachine returns an architectural (functional) machine for a program.
func NewMachine(p *Program) *Machine { return exec.NewMachine(p) }

// NewMemory returns an empty byte-addressable memory.
func NewMemory() *Memory { return exec.NewPageMem() }

// DefaultOptions returns the TFlex configuration of the paper's Table 1.
func DefaultOptions() Options { return sim.DefaultOptions() }

// TRIPSOptions returns the fixed-granularity TRIPS baseline configuration.
func TRIPSOptions() Options { return trips.Options() }

// TRIPSProcessor returns the 16-tile TRIPS array descriptor.
func TRIPSProcessor() Processor { return trips.Processor() }

// NewChip builds a chip with the given options.
func NewChip(opts Options) *Chip { return sim.New(opts) }

// ComposeRect returns a processor composed of k cores in a rectangle at
// array position (x, y).  Supported sizes: 1, 2, 4, 8, 16, 32.
func ComposeRect(x, y, k int) (Processor, error) { return compose.Rect(x, y, k) }

// Partition tiles the chip into nProcs processors of k cores each (the
// fixed-CMP configurations).
func Partition(k, nProcs int) ([]Processor, error) { return compose.Partition(k, nProcs) }

// PartitionAsymmetric places processors of possibly different sizes onto
// the core array (the asymmetric compositions of the paper's §7).
func PartitionAsymmetric(sizes []int) ([]Processor, error) {
	return compose.PackAsymmetric(sizes)
}

// CompositionSizes lists the rectangle composition sizes.
func CompositionSizes() []int { return compose.Sizes() }

// ComposeStrip returns a processor of k consecutive cores starting at
// `start` — any size from 1 to 32, the paper's "any point in between".
func ComposeStrip(start, k int) (Processor, error) { return compose.Strip(start, k) }

// RunConfig configures a single-program run.
type RunConfig struct {
	// Cores composes a processor of this many cores (default 8).
	Cores int
	// TRIPS runs on the TRIPS baseline instead of a TFlex composition.
	TRIPS bool
	// Init seeds architectural registers and memory before the run.
	Init func(regs *[128]uint64, mem *Memory)
	// MaxCycles bounds the simulation (default 2e9).
	MaxCycles uint64
	// Options overrides the chip options (nil: DefaultOptions, or
	// TRIPSOptions when TRIPS is set).
	Options *Options
	// ParallelDomains caps how many event domains may simulate
	// concurrently (Options.ParallelDomains).  Values <= 1 run every
	// domain on the calling goroutine; results are bit-identical for any
	// value and any GOMAXPROCS, so the knob trades wall-clock time only.
	// Overrides the same field in Options when both are set.
	ParallelDomains int
	// OnBlock, if set, observes every block retirement (commit or flush).
	OnBlock func(BlockEvent)
	// CollectMetrics arms the chip's telemetry registry before the run;
	// Result.Telemetry and Result.Metrics report it.  Off by default —
	// the simulation hot paths then pay only nil checks.
	CollectMetrics bool
	// ChromeTrace, if non-nil, collects fetch/execute/commit spans for
	// every retired block, one track per physical core (one simulated
	// cycle = 1µs of trace time).
	ChromeTrace *Trace
	// SampleEvery, if > 0, records window/LSQ occupancy and committed
	// instructions every N cycles; Result.Samples reports the series.
	SampleEvery uint64
	// CritPath arms critical-path attribution: every committed block's
	// latency is attributed across eight categories (fetch/dispatch,
	// NoC hop, NoC contention, ALU, LSQ, cache miss, register R/W,
	// commit), reconciling exactly with block latency.  Result.CritPath
	// reports the aggregate; architectural results are unchanged.
	CritPath bool
	// Observe, if non-nil, publishes live state into the given
	// observability server while the run executes: rolling critical-path
	// aggregates (implies CritPath), metrics snapshots and sampler rows
	// at every sample point (SampleEvery, defaulting to 4096 cycles when
	// unset).  Start/Close the server yourself.
	Observe *Observer
	// Flight arms the always-on flight recorder: every domain keeps a
	// fixed-size ring of compact scheduler/pipeline records (fetch,
	// dispatch, issue, commit, flush, window and barrier crossings,
	// shared-section grants, deferred invalidations, composition
	// changes).  Result.Flight and Result.Domains report the drained
	// rings and per-domain statistics; on a failed or panicking run the
	// rings are dumped to stderr as a post-mortem.  Off by default —
	// the hot paths then pay only nil checks.
	Flight bool
	// FlightEvents sizes each domain's ring (rounded up to a power of
	// two; <= 0 means 4096).  Setting it implies Flight.
	FlightEvents int
	// ArchDigest arms collection of the unified architectural state:
	// the committed-store stream is hashed during the run and
	// Result.Arch reports the full ArchState afterwards.  Off by
	// default — the store-commit path then pays only a nil check.
	ArchDigest bool
}

// Result reports a completed run.
type Result struct {
	Cycles uint64
	Stats  Stats
	Regs   [128]uint64
	Mem    *Memory

	// Arch is the unified architectural state of the finished run;
	// nil unless RunConfig.ArchDigest was set.
	Arch *ArchState

	Telemetry *Metrics        // live registry; nil unless CollectMetrics
	Metrics   MetricsSnapshot // end-of-run capture; nil unless CollectMetrics
	Samples   *Sampler        // nil unless SampleEvery > 0

	// CritPath is the chip-wide attribution aggregate; nil unless
	// RunConfig.CritPath (or Observe) was set.
	CritPath *CritPathSummary

	// Flight is the end-of-run flight-recorder dump; nil unless
	// RunConfig.Flight (or FlightEvents) was set.  RunMulti results
	// share one chip-wide dump.
	Flight *FlightDump
	// Domains reports per-domain scheduler statistics; nil unless the
	// flight recorder was armed.
	Domains []DomainStats
}

// Run executes a program on a freshly composed processor and returns its
// statistics and final architectural state.
func Run(p *Program, cfg RunConfig) (*Result, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	var opts Options
	var cores Processor
	var err error
	switch {
	case cfg.TRIPS:
		opts = trips.Options()
		if cfg.Options != nil {
			opts = *cfg.Options
		}
		cores = trips.Processor()
	default:
		opts = sim.DefaultOptions()
		if cfg.Options != nil {
			opts = *cfg.Options
		}
		cores, err = compose.Rect(0, 0, cfg.Cores)
		if err != nil {
			return nil, err
		}
	}
	if cfg.ParallelDomains != 0 {
		opts.ParallelDomains = cfg.ParallelDomains
	}
	chip := sim.New(opts)
	var reg *Metrics
	if cfg.CollectMetrics {
		reg = chip.Telemetry()
	}
	if cfg.ChromeTrace != nil {
		chip.SetChromeTrace(cfg.ChromeTrace)
	}
	var samp *Sampler
	if cfg.SampleEvery > 0 {
		samp = chip.SampleEvery(cfg.SampleEvery)
	}
	if cfg.CritPath || cfg.Observe != nil {
		chip.EnableCritPath()
	}
	if cfg.Flight || cfg.FlightEvents > 0 {
		chip.EnableFlight(cfg.FlightEvents)
		chip.SetFlightSink(os.Stderr)
	}
	if srv := cfg.Observe; srv != nil {
		chip.SetCritPathSink(srv.Rolling())
		// Publishing happens on the chip's event-loop goroutine via the
		// sampler notify hook — a quiescent point in every engine — so
		// handlers never read live counters or rings.
		obsReg := chip.Telemetry()
		pubSamp := samp
		if pubSamp == nil {
			pubSamp = chip.SampleEvery(4096)
		}
		pubSamp.SetNotify(func(cycle uint64, names []string, row []float64) {
			srv.PublishSample(cycle, names, row)
			srv.PublishMetrics(obsReg.Snapshot())
			srv.PublishDomains(chip.DomainStats())
			if srv.FlightWanted() {
				srv.PublishFlight(chip.FlightDump())
			}
		})
	}
	proc, err := chip.AddProc(cores, p)
	if err != nil {
		return nil, err
	}
	if cfg.Init != nil {
		cfg.Init(&proc.Regs, proc.Mem)
	}
	if cfg.OnBlock != nil {
		proc.TraceBlocks(cfg.OnBlock)
	}
	sh := armArchDigest(proc, cfg.ArchDigest)
	if err := chip.Run(cfg.MaxCycles); err != nil {
		return nil, fmt.Errorf("tflex: %w", err)
	}
	res := newResult(proc, sh)
	res.Samples = samp
	if reg != nil {
		res.Telemetry = reg
		res.Metrics = reg.Snapshot()
	}
	if cfg.CritPath || cfg.Observe != nil {
		cp := chip.CritPath()
		res.CritPath = &cp
	}
	if chip.FlightEnabled() {
		res.Flight = chip.FlightDump()
		res.Domains = chip.DomainStats()
	}
	if cfg.Observe != nil {
		cfg.Observe.PublishMetrics(chip.Telemetry().Snapshot())
		cfg.Observe.PublishDomains(chip.DomainStats())
		if cfg.Observe.FlightWanted() && chip.FlightEnabled() {
			cfg.Observe.PublishFlight(chip.FlightDump())
		}
	}
	return res, nil
}

// ProgramSpec is one program of a multiprogrammed run: what to execute
// and which composed processor to run it on.
type ProgramSpec struct {
	Prog *Program
	// Cores is the composed processor (e.g. one rectangle of a
	// Partition).  Specs must not overlap.
	Cores Processor
	// Init seeds the processor's registers and private memory.
	Init func(regs *[128]uint64, mem *Memory)
}

// RunMulti executes several independent programs on one chip, each on
// its own composed processor, and returns one Result per program in
// input order.  This is where the event-domain engine multiplies: each
// processor (plus the architectural memory it shares with nobody)
// becomes its own event domain, and RunConfig.ParallelDomains > 1 lets
// up to that many domains simulate concurrently in lockstep windows —
// with results bit-identical to ParallelDomains=1 at any GOMAXPROCS.
//
// Only the chip-wide RunConfig fields apply (MaxCycles, Options,
// ParallelDomains, Flight/FlightEvents, Observe); the per-program
// instrumentation fields are for single-program runs and are ignored
// here.  When the flight recorder is armed, every Result shares the
// same chip-wide dump and domain statistics.  An Observe server gets
// live /metrics, /domains and on-demand /flight during the run,
// published from the chip's sampler notify hook.
func RunMulti(specs []ProgramSpec, cfg RunConfig) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("tflex: RunMulti needs at least one program")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	opts := sim.DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	if cfg.ParallelDomains != 0 {
		opts.ParallelDomains = cfg.ParallelDomains
	}
	chip := sim.New(opts)
	if cfg.Flight || cfg.FlightEvents > 0 {
		chip.EnableFlight(cfg.FlightEvents)
		chip.SetFlightSink(os.Stderr)
	}
	if srv := cfg.Observe; srv != nil {
		chip.EnableCritPath()
		chip.SetCritPathSink(srv.Rolling())
		// Same quiescent-point publishing contract as Run: the sampler
		// notify hook fires at window boundaries, where every domain is
		// parked, so DomainStats/FlightDump reads are safe.
		obsReg := chip.Telemetry()
		chip.SampleEvery(4096).SetNotify(func(cycle uint64, names []string, row []float64) {
			srv.PublishSample(cycle, names, row)
			srv.PublishMetrics(obsReg.Snapshot())
			srv.PublishDomains(chip.DomainStats())
			if srv.FlightWanted() {
				srv.PublishFlight(chip.FlightDump())
			}
		})
	}
	procs := make([]*Proc, len(specs))
	hashers := make([]*arch.StoreHasher, len(specs))
	for i, sp := range specs {
		pr, err := chip.AddProc(sp.Cores, sp.Prog)
		if err != nil {
			return nil, fmt.Errorf("tflex: program %d: %w", i, err)
		}
		if sp.Init != nil {
			sp.Init(&pr.Regs, pr.Mem)
		}
		procs[i] = pr
		hashers[i] = armArchDigest(pr, cfg.ArchDigest)
	}
	if err := chip.Run(cfg.MaxCycles); err != nil {
		return nil, fmt.Errorf("tflex: %w", err)
	}
	results := make([]*Result, len(specs))
	var dump *FlightDump
	var ds []DomainStats
	if chip.FlightEnabled() {
		dump = chip.FlightDump()
		ds = chip.DomainStats()
	}
	for i, pr := range procs {
		results[i] = newResult(pr, hashers[i])
		results[i].Flight = dump
		results[i].Domains = ds
	}
	if srv := cfg.Observe; srv != nil {
		srv.PublishMetrics(chip.Telemetry().Snapshot())
		srv.PublishDomains(chip.DomainStats())
		if srv.FlightWanted() && chip.FlightEnabled() {
			srv.PublishFlight(chip.FlightDump())
		}
	}
	return results, nil
}

// armArchDigest installs a store-stream hasher on the processor when
// the run wants the unified architectural state, and returns it (nil
// when disarmed).  Shared by Run and RunMulti.
func armArchDigest(pr *Proc, want bool) *arch.StoreHasher {
	if !want {
		return nil
	}
	sh := arch.NewStoreHasher()
	pr.TraceStores(sh.Observe)
	return sh
}

// newResult assembles the architectural half of a Result — the fields
// every run type reports identically from a finished processor.
func newResult(pr *Proc, sh *arch.StoreHasher) *Result {
	res := &Result{
		Cycles: pr.Stats.Cycles,
		Stats:  pr.Stats,
		Regs:   pr.Regs,
		Mem:    pr.Mem,
	}
	if sh != nil {
		res.Arch = &ArchState{
			Regs:        pr.Regs,
			MemDigest:   pr.Mem.Digest(),
			Blocks:      pr.Stats.BlocksCommitted,
			Stores:      sh.Count(),
			StoreDigest: sh.Digest(),
		}
	}
	return res
}

// Verify runs the program architecturally (no timing) with the same
// initial state and reports the final registers — the reference any
// timing run must match.
func Verify(p *Program, init func(regs *[128]uint64, mem *Memory)) (*Machine, error) {
	m := exec.NewMachine(p)
	if init != nil {
		init(&m.Regs, m.Mem.(*exec.PageMem))
	}
	if _, err := m.Run(50_000_000); err != nil {
		return nil, err
	}
	return m, nil
}
