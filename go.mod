module github.com/clp-sim/tflex

go 1.22
