package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	tests := []struct {
		name    string
		scale   int
		reps    int
		par     int
		only    string
		wantErr string // substring of the error; "" means valid
	}{
		{"defaults", 1, 8, 8, "", ""},
		{"single pass", 4, 2, 8, "critpath", ""},
		{"every pass name", 1, 1, 8, "reference", ""},
		{"serial pass", 1, 1, 8, "serial", ""},
		{"parallel pass", 1, 1, 4, "parallel", ""},
		{"serial-capped parallel pass", 1, 1, 1, "", ""},
		{"zero reps", 1, 0, 8, "", "-reps"},
		{"negative reps", 1, -3, 8, "", "-reps"},
		{"zero scale", 0, 8, 8, "", "-scale"},
		{"zero par", 1, 8, 0, "", "-par"},
		{"negative par", 1, 8, -2, "", "-par"},
		{"unknown pass", 1, 8, 8, "fastest", "-only"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.scale, tt.reps, tt.par, tt.only)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %d, %q) = %v, want nil", tt.scale, tt.reps, tt.par, tt.only, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateFlags(%d, %d, %d, %q) = %v, want error containing %q", tt.scale, tt.reps, tt.par, tt.only, err, tt.wantErr)
			}
		})
	}
}
