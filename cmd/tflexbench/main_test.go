package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	tests := []struct {
		name    string
		scale   int
		reps    int
		only    string
		wantErr string // substring of the error; "" means valid
	}{
		{"defaults", 1, 8, "", ""},
		{"single pass", 4, 2, "critpath", ""},
		{"every pass name", 1, 1, "reference", ""},
		{"zero reps", 1, 0, "", "-reps"},
		{"negative reps", 1, -3, "", "-reps"},
		{"zero scale", 0, 8, "", "-scale"},
		{"unknown pass", 1, 8, "fastest", "-only"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.scale, tt.reps, tt.only)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %q) = %v, want nil", tt.scale, tt.reps, tt.only, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateFlags(%d, %d, %q) = %v, want error containing %q", tt.scale, tt.reps, tt.only, err, tt.wantErr)
			}
		})
	}
}
