// Command tflexbench measures simulator performance and writes the
// results to a JSON file (BENCH_sim.json at the repository root, via
// `ci.sh bench`).
//
// The workload is the Figure 6 job grid — every suite kernel on every
// TFlex composition size plus the TRIPS baseline — run five times on a
// single goroutine: on the default optimized engine, on the reference
// slow path (Options.Reference: container/heap event queue, no block
// pooling, per-fetch decode), on the optimized engine with the full
// telemetry stack armed (metric registry, latency histograms, Chrome
// trace, 64-cycle sampler), on the optimized engine with critical-path
// attribution enabled, and on the optimized engine with the flight
// recorder armed.  All runs simulate the exact same cycles, so
// reference/optimized isolates the engine optimizations,
// telemetry/optimized ("telemetry_overhead") prices the instrumentation,
// critpath/optimized ("critpath_overhead") prices the per-block
// dataflow recording and walk — ci.sh gates the latter at 1.10x — and
// flight/optimized ("flight_overhead") prices the per-event ring writes,
// gated at 1.05x.  The absolute wall seconds of each pass are also
// exported at top level so regressions in the instrumented paths are
// visible without arithmetic.
//
// Two further passes measure the event-domain engine where domains
// actually multiply: a multiprogrammed workload (four copies of every
// suite kernel on four 8-core partitions, one event domain per
// processor) run serially (ParallelDomains=1, the merged window
// scheduler) and in parallel (ParallelDomains = -par, the worker pool).
// Both passes simulate bit-identical chips, so "parallel_speedup" is a
// pure wall-clock ratio; the report records the host's CPU count
// ("cpus") alongside it because the ratio can only exceed 1 when the
// worker pool actually has cores to spread over — ci.sh gates the
// speedup on multi-CPU hosts only.
//
// Each pass runs -reps times (default 8), interleaved round-robin with
// the others in alternating (ABBA) order, and the fastest repetition is
// reported for absolute numbers: wall-clock minima isolate the code's
// cost from GC pauses and noisy neighbours, which single-shot ratios
// conflate with the instrumentation being measured.  The overhead
// ratios are instead the median of per-round ratios (see overheadOf),
// which cancels both slow load drift and within-round positional bias.
//
// Usage:
//
//	tflexbench [-scale 1] [-out BENCH_sim.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"github.com/clp-sim/tflex"
	"github.com/clp-sim/tflex/internal/profiling"
)

// engineResult is one engine's measurement over the full job grid.
type engineResult struct {
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	BlocksCommitted uint64  `json:"blocks_committed"`
	Allocs          uint64  `json:"allocs"`
	AllocsPerBlock  float64 `json:"allocs_per_block"`
}

// report is the BENCH_sim.json schema.
type report struct {
	Workload  string       `json:"workload"`
	Scale     int          `json:"scale"`
	Jobs      int          `json:"jobs"`
	CPUs      int          `json:"cpus"`
	GoVersion string       `json:"go_version"`
	Optimized engineResult `json:"optimized"`
	Reference engineResult `json:"reference"`
	Telemetry engineResult `json:"telemetry"`
	CritPath  engineResult `json:"critpath"`
	Flight    engineResult `json:"flight"`
	Speedup   float64      `json:"speedup"`
	// MultiWorkload is the multiprogrammed job grid measured by the
	// serial_domains and parallel_domains passes.
	MultiWorkload string `json:"multi_workload"`
	// SerialDomains and ParallelDomains time the identical
	// multiprogrammed simulation under the merged window scheduler
	// (ParallelDomains=1) and the worker pool (ParallelDomains =
	// parallel_domain_count); the chips they simulate are bit-identical.
	SerialDomains       engineResult `json:"serial_domains"`
	ParallelDomains     engineResult `json:"parallel_domains"`
	ParallelDomainCount int          `json:"parallel_domain_count"`
	// ParallelSpeedup is serial-domains wall over parallel-domains wall
	// (median per-round ratio, see overheadOf).  Meaningful only when
	// cpus > 1: on a single-CPU host the worker pool degenerates to
	// serial execution plus barrier overhead.
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// Absolute per-pass wall clock, duplicated from the engineResult
	// blocks: the instrumented passes' raw times, recorded explicitly so
	// trend tooling reads them without dividing ratios back out.
	OptimizedWallSeconds float64 `json:"optimized_wall_seconds"`
	TelemetryWallSeconds float64 `json:"telemetry_wall_seconds"`
	CritPathWallSeconds  float64 `json:"critpath_wall_seconds"`
	FlightWallSeconds    float64 `json:"flight_wall_seconds"`
	// TelemetryOverhead is telemetry-on wall over telemetry-off wall on
	// the optimized engine, as the median per-round ratio (see overheadOf).
	TelemetryOverhead float64 `json:"telemetry_overhead"`
	// CritPathOverhead is attribution-on wall over plain optimized wall,
	// as the median per-round ratio; ci.sh fails the bench if it exceeds
	// 1.10x.
	CritPathOverhead float64 `json:"critpath_overhead"`
	// FlightOverhead is flight-recorder-on wall over plain optimized
	// wall, as the median per-round ratio; ci.sh fails the bench if it
	// exceeds 1.05x.
	FlightOverhead float64 `json:"flight_overhead"`
}

// job is one simulation of the Figure 6 grid.
type job struct {
	kernel string
	cores  int // 0: TRIPS baseline
}

func grid() []job {
	var jobs []job
	for _, k := range tflex.Kernels() {
		for _, n := range tflex.CompositionSizes() {
			jobs = append(jobs, job{k.Name, n})
		}
		jobs = append(jobs, job{k.Name, 0})
	}
	return jobs
}

// pass is one engine configuration measured by the benchmark.
type pass struct {
	reference, telemetry, critpath, flight bool
	// multi switches the pass to the multiprogrammed workload (see
	// multiGrid); domains is its ParallelDomains setting.
	multi   bool
	domains int
	runs    []engineResult // one per round
	best    engineResult   // fastest round
}

// measureBest runs every pass reps times, interleaved round-robin, and
// keeps each pass's fastest run plus the full per-round history.  All
// reps of one pass back to back would let slow drift in machine load
// (GC from another process, thermal throttling) land entirely on one
// side of an overhead ratio; round-robin gives every pass the same
// exposure, and the per-round pairing lets overheadOf cancel what
// drift remains.
//
// Odd rounds run the passes in reverse (the ABBA scheme): within a
// round the later pass is systematically measured on a slightly more
// tired machine (turbo decay, accumulated GC debt), so a fixed order
// would bias every per-round ratio the same way.  Alternating the
// order flips the sign of that positional bias each round, and the
// median in overheadOf then straddles it.  Keep reps even so both
// orders occur equally often.
func measureBest(reps int, jobs []job, scale int, passes []*pass) error {
	for i := 0; i < reps; i++ {
		order := passes
		if i%2 == 1 {
			order = make([]*pass, len(passes))
			for j, ps := range passes {
				order[len(passes)-1-j] = ps
			}
		}
		for _, ps := range order {
			r, err := ps.measure(jobs, scale)
			if err != nil {
				return err
			}
			ps.runs = append(ps.runs, r)
			if i == 0 || r.WallSeconds < ps.best.WallSeconds {
				ps.best = r
			}
		}
	}
	return nil
}

// overheadOf prices pass a against baseline b, combining two estimators
// that machine noise contaminates in different ways.  Noise on a shared
// host is one-sided — it only ever adds time — so each estimator bounds
// the true ratio from above and the smaller is the better estimate:
//
//   - The median per-round ratio.  The two passes run seconds apart
//     within a round, so a round's ratio cancels slow load drift, the
//     ABBA ordering (see measureBest) cancels positional bias, and the
//     median discards rounds a burst split — but a burst spanning
//     several rounds still drags the median up.
//
//   - The ratio of the fastest reps.  Each pass's minimum over all
//     rounds is its least-contaminated measurement — but the two minima
//     may come from rounds minutes apart, so a burst covering every rep
//     of one pass skews this one instead.
func overheadOf(a, b *pass) float64 {
	ratios := make([]float64, len(a.runs))
	for i := range a.runs {
		ratios[i] = a.runs[i].WallSeconds / b.runs[i].WallSeconds
	}
	sort.Float64s(ratios)
	n := len(ratios)
	if n == 0 {
		return 0
	}
	median := ratios[n/2]
	if n%2 == 0 {
		median = (ratios[n/2-1] + ratios[n/2]) / 2
	}
	return min(median, a.best.WallSeconds/b.best.WallSeconds)
}

func (ps *pass) measure(jobs []job, scale int) (engineResult, error) {
	if ps.multi {
		return measureMulti(scale, ps.domains)
	}
	return measureGrid(jobs, scale, ps.reference, ps.telemetry, ps.critpath, ps.flight)
}

func measureGrid(jobs []job, scale int, reference, telemetry, critpath, flight bool) (engineResult, error) {
	opts := tflex.DefaultOptions()
	opts.Reference = reference
	// Start from a collected heap: without this, each pass is timed in
	// the GC wake of the previous one (the reference pass alone leaves
	// millions of dead objects), and the contamination lands asymmetrically
	// on whichever pass runs next in the round.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var r engineResult
	for _, j := range jobs {
		cfg := tflex.RunConfig{Cores: j.cores, Options: &opts}
		if j.cores == 0 {
			cfg = tflex.RunConfig{TRIPS: true}
			if reference {
				trips := tflex.TRIPSOptions()
				trips.Reference = true
				cfg.Options = &trips
			}
		}
		if telemetry {
			// Full stack: registry + histograms, block spans, sampler.
			// A fresh trace per job keeps memory bounded.
			cfg.CollectMetrics = true
			cfg.ChromeTrace = tflex.NewTrace()
			cfg.SampleEvery = 64
		}
		cfg.CritPath = critpath
		cfg.Flight = flight
		res, err := tflex.RunKernel(j.kernel, scale, cfg)
		if err != nil {
			return r, fmt.Errorf("%s/%dc: %w", j.kernel, j.cores, err)
		}
		r.SimCycles += res.Cycles
		r.BlocksCommitted += res.Stats.BlocksCommitted
	}
	r.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	r.Allocs = m1.Mallocs - m0.Mallocs
	r.SimCyclesPerSec = float64(r.SimCycles) / r.WallSeconds
	r.AllocsPerBlock = float64(r.Allocs) / float64(r.BlocksCommitted)
	return r, nil
}

// multiCopies is the multiprogrammed workload's processor count: four
// 8-core partitions tile the 32-core chip exactly, so every core
// participates and the chip forms four event domains.
const multiCopies = 4

// multiWorkload describes the serial/parallel passes' job grid.
func multiWorkload() string {
	return fmt.Sprintf("multiprogram grid: %d jobs (suite kernels x %d copies on 8-core partitions)",
		len(tflex.Kernels()), multiCopies)
}

// measureMulti times the multiprogrammed workload with the given
// ParallelDomains setting.  SimCycles counts chip time (the slowest
// processor of each job), not the sum over processors, so
// sim_cycles_per_sec stays comparable with the single-program passes.
func measureMulti(scale, domains int) (engineResult, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var r engineResult
	for _, k := range tflex.Kernels() {
		rects, err := tflex.Partition(8, multiCopies)
		if err != nil {
			return r, err
		}
		specs := make([]tflex.ProgramSpec, multiCopies)
		insts := make([]*tflex.KernelInstance, multiCopies)
		for i := range specs {
			inst, err := tflex.BuildKernel(k.Name, scale)
			if err != nil {
				return r, err
			}
			insts[i] = inst
			specs[i] = tflex.ProgramSpec{Prog: inst.Prog, Cores: rects[i], Init: inst.Init}
		}
		results, err := tflex.RunMulti(specs, tflex.RunConfig{ParallelDomains: domains})
		if err != nil {
			return r, fmt.Errorf("%s x%d (par %d): %w", k.Name, multiCopies, domains, err)
		}
		var chipCycles uint64
		for i, res := range results {
			if err := insts[i].Check(&res.Regs, res.Mem); err != nil {
				return r, fmt.Errorf("%s proc %d (par %d): %w", k.Name, i, domains, err)
			}
			if res.Cycles > chipCycles {
				chipCycles = res.Cycles
			}
			r.BlocksCommitted += res.Stats.BlocksCommitted
		}
		r.SimCycles += chipCycles
	}
	r.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	r.Allocs = m1.Mallocs - m0.Mallocs
	r.SimCyclesPerSec = float64(r.SimCycles) / r.WallSeconds
	r.AllocsPerBlock = float64(r.Allocs) / float64(r.BlocksCommitted)
	return r, nil
}

// passNames are the -only values, in report order.
var passNames = []string{"reference", "optimized", "telemetry", "critpath", "flight", "serial", "parallel"}

// validateFlags rejects flag values that would otherwise produce a
// silent zero-value run: -reps 0 measures nothing and reports all-zero
// numbers, -scale 0 simulates empty kernels, -par 0 would ask the
// parallel pass for zero domain workers, and a mistyped -only would
// previously burn a full default-flag benchmark before erroring.
func validateFlags(scale, reps, par int, only string) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", scale)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be >= 1, got %d", reps)
	}
	if par < 1 {
		return fmt.Errorf("-par must be >= 1, got %d", par)
	}
	if only != "" {
		known := false
		for _, n := range passNames {
			known = known || only == n
		}
		if !known {
			return fmt.Errorf("-only must be one of %s; got %q", strings.Join(passNames, ", "), only)
		}
	}
	return nil
}

func main() {
	scale := flag.Int("scale", 1, "kernel input scale")
	out := flag.String("out", "BENCH_sim.json", "output file")
	reps := flag.Int("reps", 8, "repetitions per pass (interleaved, ABBA order); the fastest is reported")
	only := flag.String("only", "", "run a single pass (reference|optimized|telemetry|critpath|flight|serial|parallel); for profiling")
	par := flag.Int("par", 8, "ParallelDomains for the parallel multiprogram pass")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if err := validateFlags(*scale, *reps, *par, *only); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	// The live heap between jobs is a few KB, so at the default GOGC the
	// collector fires once per handful of simulated blocks and the pass
	// ratios measure GC beat frequency against a near-empty heap instead
	// of engine cost.  Pin a saner target; an explicit GOGC still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	jobs := grid()
	rep := report{
		Workload:            fmt.Sprintf("fig6 grid: %d jobs (suite kernels x composition sizes + TRIPS)", len(jobs)),
		MultiWorkload:       multiWorkload(),
		Scale:               *scale,
		Jobs:                1,
		CPUs:                runtime.NumCPU(),
		GoVersion:           runtime.Version(),
		ParallelDomainCount: *par,
	}

	// Round order: reference first so its allocation burst cannot
	// inflate the optimized measurement's GC activity, and the
	// instrumented passes adjacent to the optimized baseline they are
	// priced against (overheadOf pairs within a round).  The serial and
	// parallel multiprogram passes are likewise adjacent, since
	// parallel_speedup pairs them per round.
	reference := &pass{reference: true}
	optimized := &pass{}
	telemetry := &pass{telemetry: true}
	critpath := &pass{critpath: true}
	flight := &pass{flight: true}
	serial := &pass{multi: true, domains: 1}
	parallel := &pass{multi: true, domains: *par}

	if *only != "" {
		// Single-pass mode: no report, just the pass under the profiler.
		ps, ok := map[string]*pass{
			"reference": reference, "optimized": optimized,
			"telemetry": telemetry, "critpath": critpath,
			"flight": flight,
			"serial": serial, "parallel": parallel,
		}[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "tflexbench: unknown pass %q\n", *only)
			os.Exit(1)
		}
		if err := measureBest(*reps, jobs, *scale, []*pass{ps}); err != nil {
			fmt.Fprintln(os.Stderr, "tflexbench:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-9s  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
			*only, ps.best.WallSeconds, ps.best.SimCyclesPerSec, ps.best.AllocsPerBlock)
		return
	}

	if err := measureBest(*reps, jobs, *scale,
		[]*pass{reference, telemetry, optimized, flight, critpath, serial, parallel}); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		os.Exit(1)
	}
	rep.Reference = reference.best
	rep.Optimized = optimized.best
	rep.Telemetry = telemetry.best
	rep.CritPath = critpath.best
	rep.Flight = flight.best
	rep.SerialDomains = serial.best
	rep.ParallelDomains = parallel.best
	rep.Speedup = rep.Reference.WallSeconds / rep.Optimized.WallSeconds
	rep.OptimizedWallSeconds = rep.Optimized.WallSeconds
	rep.TelemetryWallSeconds = rep.Telemetry.WallSeconds
	rep.CritPathWallSeconds = rep.CritPath.WallSeconds
	rep.FlightWallSeconds = rep.Flight.WallSeconds
	rep.TelemetryOverhead = overheadOf(telemetry, optimized)
	rep.CritPathOverhead = overheadOf(critpath, optimized)
	rep.FlightOverhead = overheadOf(flight, optimized)
	rep.ParallelSpeedup = overheadOf(serial, parallel)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		os.Exit(1)
	}
	f.Close()

	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  reference  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Reference.WallSeconds, rep.Reference.SimCyclesPerSec, rep.Reference.AllocsPerBlock)
	fmt.Printf("  optimized  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Optimized.WallSeconds, rep.Optimized.SimCyclesPerSec, rep.Optimized.AllocsPerBlock)
	fmt.Printf("  telemetry  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Telemetry.WallSeconds, rep.Telemetry.SimCyclesPerSec, rep.Telemetry.AllocsPerBlock)
	fmt.Printf("  critpath   %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.CritPath.WallSeconds, rep.CritPath.SimCyclesPerSec, rep.CritPath.AllocsPerBlock)
	fmt.Printf("  flight     %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Flight.WallSeconds, rep.Flight.SimCyclesPerSec, rep.Flight.AllocsPerBlock)
	fmt.Printf("  serial     %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block  (multiprogram, 1 domain worker)\n",
		rep.SerialDomains.WallSeconds, rep.SerialDomains.SimCyclesPerSec, rep.SerialDomains.AllocsPerBlock)
	fmt.Printf("  parallel   %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block  (multiprogram, %d domain workers)\n",
		rep.ParallelDomains.WallSeconds, rep.ParallelDomains.SimCyclesPerSec, rep.ParallelDomains.AllocsPerBlock, *par)
	fmt.Printf("  speedup    %.2fx (telemetry overhead %.2fx, critpath overhead %.2fx, flight overhead %.2fx)\n",
		rep.Speedup, rep.TelemetryOverhead, rep.CritPathOverhead, rep.FlightOverhead)
	fmt.Printf("  parallel domains %.2fx on %d CPUs\n", rep.ParallelSpeedup, rep.CPUs)
}
