// Command tflexbench measures simulator performance and writes the
// results to a JSON file (BENCH_sim.json at the repository root, via
// `ci.sh bench`).
//
// The workload is the Figure 6 job grid — every suite kernel on every
// TFlex composition size plus the TRIPS baseline — run three times on a
// single goroutine: on the default optimized engine, on the reference
// slow path (Options.Reference: container/heap event queue, no block
// pooling, per-fetch decode), and on the optimized engine with the full
// telemetry stack armed (metric registry, latency histograms, Chrome
// trace, 64-cycle sampler).  All runs simulate the exact same cycles,
// so reference/optimized isolates the engine optimizations and
// telemetry/optimized ("telemetry_overhead") prices the instrumentation
// — the telemetry-off run is the one the overhead contract gates.
//
// Usage:
//
//	tflexbench [-scale 1] [-out BENCH_sim.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/clp-sim/tflex"
)

// engineResult is one engine's measurement over the full job grid.
type engineResult struct {
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	BlocksCommitted uint64  `json:"blocks_committed"`
	Allocs          uint64  `json:"allocs"`
	AllocsPerBlock  float64 `json:"allocs_per_block"`
}

// report is the BENCH_sim.json schema.
type report struct {
	Workload  string       `json:"workload"`
	Scale     int          `json:"scale"`
	Jobs      int          `json:"jobs"`
	GoVersion string       `json:"go_version"`
	Optimized engineResult `json:"optimized"`
	Reference engineResult `json:"reference"`
	Telemetry engineResult `json:"telemetry"`
	Speedup   float64      `json:"speedup"`
	// TelemetryOverhead is telemetry-on wall over telemetry-off wall on
	// the optimized engine.
	TelemetryOverhead float64 `json:"telemetry_overhead"`
}

// job is one simulation of the Figure 6 grid.
type job struct {
	kernel string
	cores  int // 0: TRIPS baseline
}

func grid() []job {
	var jobs []job
	for _, k := range tflex.Kernels() {
		for _, n := range tflex.CompositionSizes() {
			jobs = append(jobs, job{k.Name, n})
		}
		jobs = append(jobs, job{k.Name, 0})
	}
	return jobs
}

func measure(jobs []job, scale int, reference, telemetry bool) (engineResult, error) {
	opts := tflex.DefaultOptions()
	opts.Reference = reference
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var r engineResult
	for _, j := range jobs {
		cfg := tflex.RunConfig{Cores: j.cores, Options: &opts}
		if j.cores == 0 {
			cfg = tflex.RunConfig{TRIPS: true}
			if reference {
				trips := tflex.TRIPSOptions()
				trips.Reference = true
				cfg.Options = &trips
			}
		}
		if telemetry {
			// Full stack: registry + histograms, block spans, sampler.
			// A fresh trace per job keeps memory bounded.
			cfg.CollectMetrics = true
			cfg.ChromeTrace = tflex.NewTrace()
			cfg.SampleEvery = 64
		}
		res, err := tflex.RunKernel(j.kernel, scale, cfg)
		if err != nil {
			return r, fmt.Errorf("%s/%dc: %w", j.kernel, j.cores, err)
		}
		r.SimCycles += res.Cycles
		r.BlocksCommitted += res.Stats.BlocksCommitted
	}
	r.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	r.Allocs = m1.Mallocs - m0.Mallocs
	r.SimCyclesPerSec = float64(r.SimCycles) / r.WallSeconds
	r.AllocsPerBlock = float64(r.Allocs) / float64(r.BlocksCommitted)
	return r, nil
}

func main() {
	scale := flag.Int("scale", 1, "kernel input scale")
	out := flag.String("out", "BENCH_sim.json", "output file")
	flag.Parse()

	jobs := grid()
	rep := report{
		Workload:  fmt.Sprintf("fig6 grid: %d jobs (suite kernels x composition sizes + TRIPS)", len(jobs)),
		Scale:     *scale,
		Jobs:      1,
		GoVersion: runtime.Version(),
	}

	var err error
	// Reference first so its allocation burst cannot inflate the
	// optimized measurement's GC activity.
	if rep.Reference, err = measure(jobs, *scale, true, false); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench: reference:", err)
		os.Exit(1)
	}
	if rep.Optimized, err = measure(jobs, *scale, false, false); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench: optimized:", err)
		os.Exit(1)
	}
	if rep.Telemetry, err = measure(jobs, *scale, false, true); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench: telemetry:", err)
		os.Exit(1)
	}
	rep.Speedup = rep.Reference.WallSeconds / rep.Optimized.WallSeconds
	rep.TelemetryOverhead = rep.Telemetry.WallSeconds / rep.Optimized.WallSeconds

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tflexbench:", err)
		os.Exit(1)
	}
	f.Close()

	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  reference  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Reference.WallSeconds, rep.Reference.SimCyclesPerSec, rep.Reference.AllocsPerBlock)
	fmt.Printf("  optimized  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Optimized.WallSeconds, rep.Optimized.SimCyclesPerSec, rep.Optimized.AllocsPerBlock)
	fmt.Printf("  telemetry  %6.2fs  %11.0f sim-cycles/s  %6.1f allocs/block\n",
		rep.Telemetry.WallSeconds, rep.Telemetry.SimCyclesPerSec, rep.Telemetry.AllocsPerBlock)
	fmt.Printf("  speedup    %.2fx (telemetry overhead %.2fx)\n", rep.Speedup, rep.TelemetryOverhead)
}
