package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	names := []string{"table1", "fig6", "fig10"}
	tests := []struct {
		name      string
		exp       string
		scale     int
		workloads int
		serve     string
		wantErr   string // substring of the error; "" means valid
	}{
		{"defaults", "all", 2, 10, "", ""},
		{"named experiment", "fig6", 1, 1, "", ""},
		{"serve host:port", "all", 2, 10, "127.0.0.1:18573", ""},
		{"serve wildcard port", "all", 2, 10, ":8080", ""},
		{"zero scale", "all", 0, 10, "", "-scale"},
		{"zero workloads", "all", 2, 0, "", "-workloads"},
		{"serve missing port", "all", 2, 10, "localhost", "-serve"},
		{"serve garbage", "all", 2, 10, "not an address", "-serve"},
		{"unknown experiment", "fig99", 2, 10, "", "unknown experiment"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.exp, tt.scale, tt.workloads, tt.serve, names)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%q, %d, %d, %q) = %v, want nil", tt.exp, tt.scale, tt.workloads, tt.serve, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateFlags(%q, %d, %d, %q) = %v, want error containing %q", tt.exp, tt.scale, tt.workloads, tt.serve, err, tt.wantErr)
			}
		})
	}
}
