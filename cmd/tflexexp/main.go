// Command tflexexp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	tflexexp -exp all
//	tflexexp -exp fig6 -scale 4 -jobs 8
//	tflexexp -exp fig10 -workloads 20
//
// Experiments: table1, fig5, fig6, table2, fig7, fig8, fig9, fig9x,
// handshake, fig10, ablations, all.
//
// With -serve ADDR a live observability server runs for the duration of
// the sweep: /metrics (latest telemetry snapshot), /critpath (rolling
// critical-path attribution across all jobs), /events (SSE sampler
// stream), /domains (per-domain scheduler statistics) and /debug/pprof.
// Observation is passive — the tables on stdout are unchanged.  A
// parallel-efficiency summary line (job concurrency plus domain
// scheduler aggregates) lands on stderr after the tables.
//
// Each experiment enqueues its full simulation job set on the concurrent
// runner (-jobs workers, default GOMAXPROCS) and renders its tables from
// the merged result store; the tables on stdout are byte-identical at any
// -jobs value.  Progress and the suite summary go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"github.com/clp-sim/tflex"
	"github.com/clp-sim/tflex/internal/experiments"
	"github.com/clp-sim/tflex/internal/profiling"
)

// experiment pairs a name with its runner; the explicit slice fixes the
// -exp all execution order (a map here would follow Go's randomized map
// iteration and shuffle the output between runs).
type experiment struct {
	name string
	fn   func(*experiments.Suite) (string, error)
}

func expList(workloads int) []experiment {
	return []experiment{
		{"table1", func(*experiments.Suite) (string, error) { return experiments.Table1(), nil }},
		{"fig5", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig5(); return out, err }},
		{"fig6", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig6(); return out, err }},
		{"table2", func(s *experiments.Suite) (string, error) { return s.Table2() }},
		{"fig7", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig7(); return out, err }},
		{"fig8", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig8(); return out, err }},
		{"fig9", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig9(); return out, err }},
		{"fig9x", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig9x(); return out, err }},
		{"handshake", func(s *experiments.Suite) (string, error) { _, out, err := s.Handshake(); return out, err }},
		{"fig10", func(s *experiments.Suite) (string, error) { _, out, err := s.Fig10(workloads); return out, err }},
		{"ablations", func(s *experiments.Suite) (string, error) { _, out, err := s.Ablations(8); return out, err }},
	}
}

// validateFlags rejects flag values that would otherwise degrade the
// run silently or fail late: non-positive -scale/-workloads render
// empty or degenerate sweeps, an unparseable -serve address would only
// surface once the server starts, and an unknown -exp used to be
// diagnosed after flag handling rather than with the usage text.
func validateFlags(exp string, scale, workloads int, serve string, names []string) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", scale)
	}
	if workloads < 1 {
		return fmt.Errorf("-workloads must be >= 1, got %d", workloads)
	}
	if serve != "" {
		if _, _, err := net.SplitHostPort(serve); err != nil {
			return fmt.Errorf("-serve %q: %v (want host:port, e.g. 127.0.0.1:8080)", serve, err)
		}
	}
	if exp != "all" {
		known := false
		for _, n := range names {
			known = known || exp == n
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (want one of %s, all)", exp, strings.Join(names, ", "))
		}
	}
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig5, fig6, table2, fig7, fig8, fig9, fig9x, handshake, fig10, ablations, all)")
	scale := flag.Int("scale", 2, "kernel input scale")
	workloads := flag.Int("workloads", 10, "multiprogrammed workloads per size (fig10)")
	jobs := flag.Int("jobs", 0, "concurrent simulation jobs (<=0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "print per-job progress with wall-clock timing to stderr")
	metrics := flag.String("metrics", "", "write every job's telemetry-registry snapshot as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write runner job lifecycles as a chrome://tracing event file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	serve := flag.String("serve", "", "serve live observability (/metrics, /critpath, /events, /debug/pprof) on this address while the sweep runs")
	flag.Parse()

	exps := expList(*workloads)
	var names []string
	for _, e := range exps {
		names = append(names, e.name)
	}
	if err := validateFlags(*exp, *scale, *workloads, *serve, names); err != nil {
		fmt.Fprintln(os.Stderr, "tflexexp:", err)
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexexp:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	s := experiments.NewSuite(*scale)
	s.SetJobs(*jobs)
	if *progress {
		s.SetProgress(os.Stderr)
	}
	var trace *tflex.Trace
	if *chromeTrace != "" {
		trace = tflex.NewTrace()
		s.SetTrace(trace)
	}
	if *serve != "" {
		srv := tflex.NewObserver()
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tflexexp: serve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observability server on http://%s (endpoints: /metrics /critpath /events /domains /debug/pprof)\n", addr)
		s.SetObserver(srv)
		defer srv.Close()
	}

	run := func(e experiment) {
		fmt.Printf("\n================ %s ================\n", strings.ToUpper(e.name))
		out, err := e.fn(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tflexexp: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(out)
	}

	// finish writes the telemetry artifacts and the suite summary after
	// the selected experiments have rendered.
	finish := func() {
		if *metrics != "" {
			if err := writeFile(*metrics, s.WriteMetrics); err != nil {
				fmt.Fprintln(os.Stderr, "tflexexp:", err)
				os.Exit(1)
			}
		}
		if trace != nil {
			if err := writeFile(*chromeTrace, trace.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, "tflexexp:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintln(os.Stderr, s.Summary())
		fmt.Fprintln(os.Stderr, s.Parallel())
	}

	// validateFlags already pinned *exp to "all" or a known name.
	if *exp == "all" {
		for _, e := range exps {
			run(e)
		}
	} else {
		for _, e := range exps {
			if e.name == *exp {
				run(e)
				break
			}
		}
	}
	finish()
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
