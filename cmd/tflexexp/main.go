// Command tflexexp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	tflexexp -exp all
//	tflexexp -exp fig6 -scale 4
//	tflexexp -exp fig10 -workloads 20
//
// Experiments: table1, fig5, fig6, table2, fig7, fig8, fig9, handshake,
// fig10, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/clp-sim/tflex/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig5, fig6, table2, fig7, fig8, fig9, handshake, fig10, ablations, all)")
	scale := flag.Int("scale", 2, "kernel input scale")
	workloads := flag.Int("workloads", 10, "multiprogrammed workloads per size (fig10)")
	flag.Parse()

	s := experiments.NewSuite(*scale)
	run := func(name string, fn func() (string, error)) {
		fmt.Printf("\n================ %s ================\n", strings.ToUpper(name))
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tflexexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
	}

	all := map[string]func() (string, error){
		"table1": func() (string, error) { return experiments.Table1(), nil },
		"fig5": func() (string, error) {
			_, out, err := s.Fig5()
			return out, err
		},
		"fig6": func() (string, error) {
			_, out, err := s.Fig6()
			return out, err
		},
		"table2": s.Table2,
		"fig7": func() (string, error) {
			_, out, err := s.Fig7()
			return out, err
		},
		"fig8": func() (string, error) {
			_, out, err := s.Fig8()
			return out, err
		},
		"fig9": func() (string, error) {
			_, out, err := s.Fig9()
			return out, err
		},
		"handshake": func() (string, error) {
			_, out, err := s.Handshake()
			return out, err
		},
		"fig10": func() (string, error) {
			_, out, err := s.Fig10(*workloads)
			return out, err
		},
		"ablations": func() (string, error) {
			_, out, err := s.Ablations(8)
			return out, err
		},
	}
	order := []string{"table1", "fig5", "fig6", "table2", "fig7", "fig8", "fig9", "handshake", "fig10", "ablations"}

	if *exp == "all" {
		for _, name := range order {
			run(name, all[name])
		}
		return
	}
	fn, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "tflexexp: unknown experiment %q (want one of %s, all)\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run(*exp, fn)
}
