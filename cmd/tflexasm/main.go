// Command tflexasm assembles EDGE block programs from the textual
// assembly language, disassembles the resulting placement, and optionally
// runs them functionally or on a TFlex composition.
//
// Usage:
//
//	tflexasm prog.tasl                   # assemble + disassemble
//	tflexasm -run -cores 8 prog.tasl     # assemble + simulate
//	tflexasm -run -r 1=100 prog.tasl     # seed r1 = 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/clp-sim/tflex"
)

func main() {
	run := flag.Bool("run", false, "run the program on a TFlex composition")
	cores := flag.Int("cores", 8, "composition size for -run")
	var regSeeds regFlags
	flag.Var(&regSeeds, "r", "seed register, e.g. -r 1=100 (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tflexasm [-run] [-cores N] [-r reg=val] file.tasl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexasm:", err)
		os.Exit(1)
	}
	program, err := tflex.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexasm:", err)
		os.Exit(1)
	}
	fmt.Print(tflex.Disassemble(program))

	if !*run {
		return
	}
	res, err := tflex.Run(program, tflex.RunConfig{
		Cores: *cores,
		Init: func(regs *[128]uint64, _ *tflex.Memory) {
			for _, s := range regSeeds {
				regs[s.reg] = s.val
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexasm:", err)
		os.Exit(1)
	}
	fmt.Printf("\nran on TFlex-%d: %d cycles, %d blocks, IPC %.3f\n",
		*cores, res.Cycles, res.Stats.BlocksCommitted, res.Stats.IPC())
	fmt.Println("non-zero registers:")
	for r, v := range res.Regs {
		if v != 0 {
			fmt.Printf("  r%-3d = %d (%#x)\n", r, v, v)
		}
	}
}

type regSeed struct {
	reg int
	val uint64
}

type regFlags []regSeed

func (f *regFlags) String() string { return fmt.Sprintf("%v", []regSeed(*f)) }

func (f *regFlags) Set(s string) error {
	reg, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want reg=val, got %q", s)
	}
	r, err := strconv.Atoi(reg)
	if err != nil || r < 0 || r > 127 {
		return fmt.Errorf("bad register %q", reg)
	}
	v, err := strconv.ParseUint(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", val)
	}
	*f = append(*f, regSeed{r, v})
	return nil
}
