// tflexlint runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only go/ast + go/types analyzers that enforce
// the simulator's determinism, pooling, telemetry-cost and
// event-ordering invariants.
//
// Usage:
//
//	go run ./cmd/tflexlint ./...            # whole module (the ci.sh lint stage)
//	go run ./cmd/tflexlint ./internal/sim   # one package subtree
//	go run ./cmd/tflexlint -analyzers determinism,poolguard ./...
//	go run ./cmd/tflexlint -json ./...      # machine-readable findings
//	go run ./cmd/tflexlint -list            # describe the analyzers
//
// Findings print as "file:line:col: [analyzer] message" and make the
// exit status 1; a clean tree exits 0.  Suppress an audited finding
// with a `//lint:allow <analyzer> <reason>` comment on the flagged
// line or the line above — unused directives are themselves findings,
// so suppressions cannot go stale.
//
// With -json the output is one JSON array of findings, each with file,
// line, col, analyzer, message and allow-state; audited (allowed)
// findings are included with their reasons but do not affect the exit
// status, so CI can attach the full record while gating only on live
// findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/clp-sim/tflex/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array (audited findings included, marked allowed)")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tflexlint [-list] [-json] [-analyzers a,b] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *analyzersFlag != "" {
		var err error
		analyzers, err = lint.ByName(*analyzersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tflexlint:", err)
			flag.Usage()
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		os.Exit(2)
	}

	filter, err := packageFilter(cwd, root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		flag.Usage()
		os.Exit(2)
	}

	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		os.Exit(2)
	}

	diags := lint.RunDetailed(m, analyzers, filter)
	live := 0
	for i := range diags {
		// Print module-relative paths: stable across checkouts.
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
		if !diags[i].Allowed {
			live++
		}
	}

	if *jsonFlag {
		type finding struct {
			File        string `json:"file"`
			Line        int    `json:"line"`
			Col         int    `json:"col"`
			Analyzer    string `json:"analyzer"`
			Message     string `json:"message"`
			Allowed     bool   `json:"allowed"`
			AllowReason string `json:"allow_reason,omitempty"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
				Allowed: d.Allowed, AllowReason: d.AllowReason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "tflexlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			if !d.Allowed {
				fmt.Println(d)
			}
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "tflexlint: %d finding(s)\n", live)
		os.Exit(1)
	}
}

// packageFilter turns command-line patterns into a package predicate.
// Supported: "./..." (everything), "dir/..." (subtree) and plain
// directories, all relative to the current directory.
func packageFilter(cwd, root string, args []string) (func(*lint.Package) bool, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	type pat struct {
		rel     string // module-relative path prefix ("" = module root)
		subtree bool
	}
	var pats []pat
	for _, a := range args {
		subtree := false
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			subtree = true
			a = rest
			if a == "." || a == "" {
				a = "."
			}
		}
		abs := a
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, a)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q lies outside the module at %s", a, root)
		}
		if rel == "." {
			rel = ""
		}
		pats = append(pats, pat{rel: filepath.ToSlash(rel), subtree: subtree})
	}
	return func(p *lint.Package) bool {
		for _, pt := range pats {
			if p.RelPath == pt.rel {
				return true
			}
			if pt.subtree && (pt.rel == "" || strings.HasPrefix(p.RelPath, pt.rel+"/")) {
				return true
			}
		}
		return false
	}, nil
}
