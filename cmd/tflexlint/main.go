// tflexlint runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only go/ast + go/types analyzers that enforce
// the simulator's determinism, pooling, telemetry-cost and
// event-ordering invariants.
//
// Usage:
//
//	go run ./cmd/tflexlint ./...            # whole module (the ci.sh lint stage)
//	go run ./cmd/tflexlint ./internal/sim   # one package subtree
//	go run ./cmd/tflexlint -analyzers determinism,poolguard ./...
//	go run ./cmd/tflexlint -list            # describe the analyzers
//
// Findings print as "file:line:col: [analyzer] message" and make the
// exit status 1; a clean tree exits 0.  Suppress an audited finding
// with a `//lint:allow <analyzer> <reason>` comment on the flagged
// line or the line above — unused directives are themselves findings,
// so suppressions cannot go stale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/clp-sim/tflex/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tflexlint [-list] [-analyzers a,b] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *analyzersFlag != "" {
		var err error
		analyzers, err = lint.ByName(*analyzersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tflexlint:", err)
			flag.Usage()
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		os.Exit(2)
	}

	filter, err := packageFilter(cwd, root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		flag.Usage()
		os.Exit(2)
	}

	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexlint:", err)
		os.Exit(2)
	}

	diags := lint.Run(m, analyzers, filter)
	for _, d := range diags {
		// Print module-relative paths: stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tflexlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// packageFilter turns command-line patterns into a package predicate.
// Supported: "./..." (everything), "dir/..." (subtree) and plain
// directories, all relative to the current directory.
func packageFilter(cwd, root string, args []string) (func(*lint.Package) bool, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	type pat struct {
		rel     string // module-relative path prefix ("" = module root)
		subtree bool
	}
	var pats []pat
	for _, a := range args {
		subtree := false
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			subtree = true
			a = rest
			if a == "." || a == "" {
				a = "."
			}
		}
		abs := a
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, a)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q lies outside the module at %s", a, root)
		}
		if rel == "." {
			rel = ""
		}
		pats = append(pats, pat{rel: filepath.ToSlash(rel), subtree: subtree})
	}
	return func(p *lint.Package) bool {
		for _, pt := range pats {
			if p.RelPath == pt.rel {
				return true
			}
			if pt.subtree && (pt.rel == "" || strings.HasPrefix(p.RelPath, pt.rel+"/")) {
				return true
			}
		}
		return false
	}, nil
}
