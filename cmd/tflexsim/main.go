// Command tflexsim runs one benchmark on one processor configuration and
// prints its cycle count and microarchitectural statistics.
//
// Usage:
//
//	tflexsim -kernel conv -cores 8
//	tflexsim -kernel mcf -trips
//	tflexsim -kernel conv -cores 16 -critpath
//	tflexsim -kernel conv -sweep -jobs 4
//	tflexsim -kernel conv -cores 8 -procs 4 -par 4
//	tflexsim -fuzz-seed 42
//	tflexsim -fuzz-n 1000
//	tflexsim -list
//
// -procs N multiprograms N copies of the kernel onto disjoint
// compositions of -cores cores each (one chip, one event domain per
// processor) and prints per-processor results; -par caps how many of
// those domains simulate concurrently.  Results are bit-identical for
// any -par value — the knob trades wall-clock time only.
//
// -critpath prints the cycle-exact critical-path attribution breakdown
// after the run (every committed block's latency split across eight
// categories that sum exactly to the block's lifetime).  -serve ADDR
// additionally exposes /metrics, /critpath, /events and /debug/pprof
// over HTTP while the simulation runs.
//
// -fuzz-seed N replays one generated program from the differential
// fuzzer through every executor (functional, conv-trace, optimized and
// reference timing on 1/2/4 cores); -fuzz-n N sweeps seeds [0,N).  A
// divergence is shrunk to a minimal reproducer and dumped as a .tfa
// file with a flight-recorder sidecar.
//
// -flight FILE arms the always-on flight recorder and writes every
// domain's ring of scheduler/pipeline records as JSON after the run
// (combined with -fuzz-seed it replays the seed with the recorder
// armed); -flight-events N sizes the rings; -flight-print FILE renders
// a dump back as text:
//
//	tflexsim -kernel conv -cores 8 -flight dump.json
//	tflexsim -fuzz-seed 7 -flight dump.json
//	tflexsim -flight-print dump.json
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/clp-sim/tflex"
	"github.com/clp-sim/tflex/internal/edgegen"
	"github.com/clp-sim/tflex/internal/experiments"
	"github.com/clp-sim/tflex/internal/flight"
	"github.com/clp-sim/tflex/internal/fuzz"
	"github.com/clp-sim/tflex/internal/profiling"
)

func main() {
	kernel := flag.String("kernel", "conv", "benchmark name (see -list)")
	cores := flag.Int("cores", 8, "TFlex composition size (1, 2, 4, 8, 16, 32)")
	useTRIPS := flag.Bool("trips", false, "run on the fixed-granularity TRIPS baseline")
	scale := flag.Int("scale", 2, "kernel input scale")
	list := flag.Bool("list", false, "list benchmarks and exit")
	jsonOut := flag.Bool("json", false, "emit statistics as JSON")
	timeline := flag.String("timeline", "", "write a per-block lifecycle CSV to this file")
	metrics := flag.String("metrics", "", "write the telemetry registry (counters/gauges/histograms) as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write block lifecycles as a chrome://tracing event file")
	sample := flag.String("sample", "", "write cycle-sampled occupancy time series as JSON to this file")
	sampleEvery := flag.Uint64("sample-every", 256, "sampling interval in cycles for -sample")
	critPath := flag.Bool("critpath", false, "attribute every committed block's latency across the critical-path categories and print the breakdown")
	serve := flag.String("serve", "", "serve live observability (/metrics, /critpath, /events, /debug/pprof) on this address during the run")
	sweep := flag.Bool("sweep", false, "run the kernel on every composition size concurrently and print the speedup curve")
	jobs := flag.Int("jobs", 0, "concurrent simulation jobs for -sweep (<=0: GOMAXPROCS)")
	procs := flag.Int("procs", 1, "multiprogram this many copies of the kernel on disjoint compositions")
	par := flag.Int("par", 0, "cap on concurrently simulated event domains (<=1: serial; results identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	fuzzSeed := flag.Int64("fuzz-seed", -1, "replay this differential-fuzz seed through every executor and report any divergence")
	fuzzN := flag.Int("fuzz-n", 0, "differentially check seeds [0,N) across every executor")
	flightOut := flag.String("flight", "", "arm the flight recorder and write its ring dump as JSON to this file after the run")
	flightEvents := flag.Int("flight-events", 0, "per-domain flight ring size in records, rounded up to a power of two (<=0: 4096)")
	flightPrint := flag.String("flight-print", "", "render a flight dump file as text on stdout and exit")
	flag.Parse()

	if *flightPrint != "" {
		if err := printFlight(*flightPrint); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
		return
	}

	if err := validateFlags(*cores, *scale, *procs, *par, *fuzzN, *fuzzSeed, *useTRIPS); err != nil {
		fmt.Fprintln(os.Stderr, "tflexsim:", err)
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexsim:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list {
		for _, k := range append(tflex.Kernels(), tflex.KernelExtras()...) {
			ilp := "low-ilp"
			if k.HighILP {
				ilp = "high-ilp"
			}
			fmt.Printf("%-12s %-8s %s\n", k.Name, k.Suite, ilp)
		}
		return
	}

	if *fuzzSeed >= 0 || *fuzzN > 0 {
		if err := runFuzz(*fuzzSeed, *fuzzN, *flightOut, *flightEvents); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
		return
	}

	if *sweep {
		if err := runSweep(*kernel, *scale, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
		return
	}

	var srv *tflex.Observer
	if *serve != "" {
		srv = tflex.NewObserver()
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim: serve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observability server on http://%s (endpoints: /metrics /critpath /events /domains /flight /debug/pprof)\n", addr)
		defer srv.Close()
	}

	if *procs > 1 {
		if err := runMultiProg(*kernel, *scale, *cores, *procs, *par, *flightOut, *flightEvents, srv); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
		return
	}

	runCfg := tflex.RunConfig{
		Cores:           *cores,
		TRIPS:           *useTRIPS,
		CritPath:        *critPath,
		ParallelDomains: *par,
		Flight:          *flightOut != "",
		FlightEvents:    *flightEvents,
		Observe:         srv,
	}
	var events []tflex.BlockEvent
	if *timeline != "" {
		runCfg.OnBlock = func(ev tflex.BlockEvent) { events = append(events, ev) }
	}
	runCfg.CollectMetrics = *metrics != ""
	if *chromeTrace != "" {
		runCfg.ChromeTrace = tflex.NewTrace()
	}
	if *sample != "" {
		runCfg.SampleEvery = *sampleEvery
	}
	res, err := tflex.RunKernel(*kernel, *scale, runCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexsim:", err)
		os.Exit(1)
	}
	if *timeline != "" {
		if err := writeTimeline(*timeline, events); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
	}
	for _, out := range []struct {
		path  string
		write func(io.Writer) error
	}{
		{*metrics, func(w io.Writer) error { return res.Telemetry.WriteJSON(w) }},
		{*chromeTrace, func(w io.Writer) error { return runCfg.ChromeTrace.WriteJSON(w) }},
		{*sample, func(w io.Writer) error { return res.Samples.WriteJSON(w) }},
		{*flightOut, func(w io.Writer) error { return res.Flight.WriteJSON(w) }},
	} {
		if out.path == "" {
			continue
		}
		if err := writeFile(out.path, out.write); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
	}
	cfg := fmt.Sprintf("TFlex-%d", *cores)
	if *useTRIPS {
		cfg = "TRIPS"
	}
	st := res.Stats
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Kernel   string
			Config   string
			Scale    int
			Cycles   uint64
			IPC      float64
			Stats    tflex.Stats
			CritPath *tflex.CritPathSummary `json:",omitempty"`
		}{*kernel, cfg, *scale, res.Cycles, st.IPC(), st, res.CritPath}); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s on %s (scale %d): outputs validated against reference\n", *kernel, cfg, *scale)
	fmt.Printf("  cycles            %d\n", res.Cycles)
	fmt.Printf("  blocks committed  %d (flushed %d)\n", st.BlocksCommitted, st.BlocksFlushed)
	fmt.Printf("  useful insts      %d (IPC %.3f)\n", st.InstsCommitted, st.IPC())
	fmt.Printf("  loads/stores      %d/%d\n", st.Loads, st.Stores)
	fmt.Printf("  branch flushes    %d\n", st.BranchFlushes)
	fmt.Printf("  violation flushes %d\n", st.ViolationFlushes)
	fmt.Printf("  LSQ NACKs         %d (overflow flushes %d)\n", st.LSQNACKs, st.LSQOverflowFlushes)
	fmt.Printf("  I-cache misses    %d\n", st.ICacheMisses)
	fc, fh, fb, fd, fi := st.FetchLatency()
	fmt.Printf("  fetch latency     const %.1f + hand-off %.1f + distribute %.1f + dispatch %.1f + i-stall %.1f cycles/block\n",
		fc, fh, fb, fd, fi)
	ca, ch := st.CommitLatency()
	fmt.Printf("  commit latency    arch %.1f + handshake %.1f cycles/block\n", ca, ch)
	util := st.Utilization()
	if len(util) > 0 {
		fmt.Printf("  core utilization  ")
		for i, u := range util {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.2f", u)
		}
		fmt.Println(" issued insts/cycle")
	}
	if res.CritPath != nil {
		fmt.Printf("  critical path     %s", res.CritPath.String())
	}
}

// validateFlags rejects flag combinations before any simulation runs:
// a composition size the chip cannot form, a partition that does not
// fit the 32-core array, or a negative domain cap would otherwise
// surface as a mid-run error (or, for -procs with -trips, silently run
// a single processor).
func validateFlags(cores, scale, procs, par, fuzzN int, fuzzSeed int64, trips bool) error {
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", scale)
	}
	if par < 0 {
		return fmt.Errorf("-par must be >= 0 (0 or 1: serial), got %d", par)
	}
	if procs < 1 {
		return fmt.Errorf("-procs must be >= 1, got %d", procs)
	}
	if fuzzN < 0 {
		return fmt.Errorf("-fuzz-n must be >= 0, got %d", fuzzN)
	}
	if fuzzSeed >= 0 && fuzzN > 0 {
		return fmt.Errorf("-fuzz-seed replays one seed; -fuzz-n sweeps a range — give one or the other")
	}
	if (fuzzSeed >= 0 || fuzzN > 0) && trips {
		return fmt.Errorf("the differential fuzzer fixes its own executor set; it cannot combine with -trips")
	}
	if trips {
		if procs > 1 {
			return fmt.Errorf("-procs multiprograms TFlex compositions; the TRIPS baseline (-trips) runs one processor")
		}
		return nil
	}
	sizeOK := false
	for _, n := range tflex.CompositionSizes() {
		sizeOK = sizeOK || cores == n
	}
	if !sizeOK {
		return fmt.Errorf("-cores must be a composition size (1, 2, 4, 8, 16, 32), got %d", cores)
	}
	if procs*cores > tflex.NumCores {
		return fmt.Errorf("-procs %d x -cores %d exceeds the %d-core chip", procs, cores, tflex.NumCores)
	}
	return nil
}

// runFuzz drives the differential harness from the command line: one
// seed (replaying a reproducer from a test failure) or a seed range.
// A divergence is shrunk, dumped as a .tfa file with a flight-recorder
// sidecar, and reported as an error.  With -flight, a single-seed
// replay additionally re-runs the program on a 2-core composition with
// the recorder armed and writes the ring dump — divergence or not.
func runFuzz(seed int64, n int, flightOut string, flightEvents int) error {
	h := fuzz.New()
	check := func(seed int64) error {
		d, err := h.CheckSeed(seed)
		if err != nil {
			return err
		}
		if d == nil {
			return nil
		}
		d = h.Shrink(d)
		path, derr := fuzz.DumpTFA(d)
		if derr != nil {
			path = "(dump failed: " + derr.Error() + ")"
		}
		return fmt.Errorf("%s\nshrunk reproducer: %s", d.Report(), path)
	}
	if n == 0 { // single-seed replay
		if err := check(seed); err != nil {
			return err
		}
		if flightOut != "" {
			if err := dumpSeedFlight(seed, flightOut, flightEvents); err != nil {
				return err
			}
		}
		fmt.Printf("fuzz seed %d: %d executors agree\n", seed, len(h.Execs))
		return nil
	}
	for s := int64(0); s < int64(n); s++ {
		if err := check(s); err != nil {
			return err
		}
	}
	fmt.Printf("fuzz seeds [0,%d): %d executors agree on every program\n", n, len(h.Execs))
	return nil
}

// dumpSeedFlight replays one fuzz seed on a 2-core optimized
// composition with the flight recorder armed and writes the ring dump
// as JSON.
func dumpSeedFlight(seed int64, path string, events int) error {
	spec := edgegen.GenSpec(seed)
	p, err := spec.Build()
	if err != nil {
		return err
	}
	dump, err := fuzz.FlightReplay(p, spec.Input(), 2, events)
	if err != nil {
		return err
	}
	return writeFile(path, dump.WriteJSON)
}

// printFlight renders a flight dump file back as text.
func printFlight(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dump, err := flight.ParseDump(f)
	if err != nil {
		return err
	}
	return dump.WriteText(os.Stdout)
}

// runMultiProg multiprograms n copies of the kernel on disjoint
// compositions of the given size — one event domain per processor, at
// most par of them simulating concurrently — and prints per-processor
// results.
func runMultiProg(kernel string, scale, cores, n, par int, flightOut string, flightEvents int, srv *tflex.Observer) error {
	rects, err := tflex.Partition(cores, n)
	if err != nil {
		return err
	}
	specs := make([]tflex.ProgramSpec, n)
	insts := make([]*tflex.KernelInstance, n)
	for i := range specs {
		inst, err := tflex.BuildKernel(kernel, scale)
		if err != nil {
			return err
		}
		insts[i] = inst
		specs[i] = tflex.ProgramSpec{Prog: inst.Prog, Cores: rects[i], Init: inst.Init}
	}
	results, err := tflex.RunMulti(specs, tflex.RunConfig{
		ParallelDomains: par,
		Flight:          flightOut != "",
		FlightEvents:    flightEvents,
		Observe:         srv,
	})
	if err != nil {
		return err
	}
	if flightOut != "" {
		if err := writeFile(flightOut, results[0].Flight.WriteJSON); err != nil {
			return err
		}
	}
	for i, r := range results {
		if err := insts[i].Check(&r.Regs, r.Mem); err != nil {
			return fmt.Errorf("proc %d output validation failed: %w", i, err)
		}
	}
	mode := "serial"
	if par > 1 {
		mode = fmt.Sprintf("%d parallel domains", par)
	}
	fmt.Printf("%s x%d on TFlex-%d partitions (scale %d, %s): outputs validated against reference\n",
		kernel, n, cores, scale, mode)
	for i, r := range results {
		fmt.Printf("  proc %d  cycles %12d  IPC %6.3f  blocks committed %d\n",
			i, r.Cycles, r.Stats.IPC(), r.Stats.BlocksCommitted)
	}
	return nil
}

// runSweep fans the kernel's full composition sweep out across the
// concurrent job engine and prints the cores -> cycles/speedup curve.
func runSweep(kernel string, scale, jobs int) error {
	s := experiments.NewSuite(scale)
	s.SetJobs(jobs)
	s.SetProgress(os.Stderr)
	if err := s.Prefetch(s.SweepSpecs(kernel)); err != nil {
		return err
	}
	fmt.Printf("%s composition sweep (scale %d): outputs validated against reference\n", kernel, scale)
	fmt.Printf("  %6s  %12s  %8s  %6s\n", "cores", "cycles", "speedup", "IPC")
	base, err := s.TFlexRun(kernel, 1)
	if err != nil {
		return err
	}
	for _, n := range tflex.CompositionSizes() {
		r, err := s.TFlexRun(kernel, n)
		if err != nil {
			return err
		}
		fmt.Printf("  %6d  %12d  %8.3f  %6.3f\n",
			n, r.Cycles, float64(base.Cycles)/float64(r.Cycles), r.Stats.IPC())
	}
	fmt.Fprintln(os.Stderr, s.Summary())
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTimeline dumps the block lifecycle events as CSV.
func writeTimeline(path string, events []tflex.BlockEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"seq", "block", "owner_core", "fetch_start", "dispatch_done", "complete", "commit_start", "retired", "flushed", "useful"}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			strconv.FormatUint(ev.Seq, 10),
			ev.Name,
			strconv.Itoa(ev.OwnerCore),
			strconv.FormatUint(ev.FetchStart, 10),
			strconv.FormatUint(ev.DispatchDone, 10),
			strconv.FormatUint(ev.CompleteAt, 10),
			strconv.FormatUint(ev.CommitStart, 10),
			strconv.FormatUint(ev.RetiredAt, 10),
			strconv.FormatBool(ev.Flushed),
			strconv.Itoa(ev.Useful),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
