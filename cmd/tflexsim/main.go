// Command tflexsim runs one benchmark on one processor configuration and
// prints its cycle count and microarchitectural statistics.
//
// Usage:
//
//	tflexsim -kernel conv -cores 8
//	tflexsim -kernel mcf -trips
//	tflexsim -list
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/clp-sim/tflex"
)

func main() {
	kernel := flag.String("kernel", "conv", "benchmark name (see -list)")
	cores := flag.Int("cores", 8, "TFlex composition size (1, 2, 4, 8, 16, 32)")
	useTRIPS := flag.Bool("trips", false, "run on the fixed-granularity TRIPS baseline")
	scale := flag.Int("scale", 2, "kernel input scale")
	list := flag.Bool("list", false, "list benchmarks and exit")
	jsonOut := flag.Bool("json", false, "emit statistics as JSON")
	timeline := flag.String("timeline", "", "write a per-block lifecycle CSV to this file")
	flag.Parse()

	if *list {
		for _, k := range append(tflex.Kernels(), tflex.KernelExtras()...) {
			ilp := "low-ilp"
			if k.HighILP {
				ilp = "high-ilp"
			}
			fmt.Printf("%-12s %-8s %s\n", k.Name, k.Suite, ilp)
		}
		return
	}

	runCfg := tflex.RunConfig{
		Cores: *cores,
		TRIPS: *useTRIPS,
	}
	var events []tflex.BlockEvent
	if *timeline != "" {
		runCfg.OnBlock = func(ev tflex.BlockEvent) { events = append(events, ev) }
	}
	res, err := tflex.RunKernel(*kernel, *scale, runCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflexsim:", err)
		os.Exit(1)
	}
	if *timeline != "" {
		if err := writeTimeline(*timeline, events); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
	}
	cfg := fmt.Sprintf("TFlex-%d", *cores)
	if *useTRIPS {
		cfg = "TRIPS"
	}
	st := res.Stats
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Kernel string
			Config string
			Scale  int
			Cycles uint64
			IPC    float64
			Stats  tflex.Stats
		}{*kernel, cfg, *scale, res.Cycles, st.IPC(), st}); err != nil {
			fmt.Fprintln(os.Stderr, "tflexsim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s on %s (scale %d): outputs validated against reference\n", *kernel, cfg, *scale)
	fmt.Printf("  cycles            %d\n", res.Cycles)
	fmt.Printf("  blocks committed  %d (flushed %d)\n", st.BlocksCommitted, st.BlocksFlushed)
	fmt.Printf("  useful insts      %d (IPC %.3f)\n", st.InstsCommitted, st.IPC())
	fmt.Printf("  loads/stores      %d/%d\n", st.Loads, st.Stores)
	fmt.Printf("  branch flushes    %d\n", st.BranchFlushes)
	fmt.Printf("  violation flushes %d\n", st.ViolationFlushes)
	fmt.Printf("  LSQ NACKs         %d (overflow flushes %d)\n", st.LSQNACKs, st.LSQOverflowFlushes)
	fmt.Printf("  I-cache misses    %d\n", st.ICacheMisses)
	fc, fh, fb, fd, fi := st.FetchLatency()
	fmt.Printf("  fetch latency     const %.1f + hand-off %.1f + distribute %.1f + dispatch %.1f + i-stall %.1f cycles/block\n",
		fc, fh, fb, fd, fi)
	ca, ch := st.CommitLatency()
	fmt.Printf("  commit latency    arch %.1f + handshake %.1f cycles/block\n", ca, ch)
	util := st.Utilization()
	if len(util) > 0 {
		fmt.Printf("  core utilization  ")
		for i, u := range util {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.2f", u)
		}
		fmt.Println(" issued insts/cycle")
	}
}

// writeTimeline dumps the block lifecycle events as CSV.
func writeTimeline(path string, events []tflex.BlockEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"seq", "block", "owner", "fetched", "complete", "retired", "flushed", "useful"}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			strconv.FormatUint(ev.Seq, 10),
			ev.Name,
			strconv.Itoa(ev.Owner),
			strconv.FormatUint(ev.FetchedAt, 10),
			strconv.FormatUint(ev.CompleteAt, 10),
			strconv.FormatUint(ev.RetiredAt, 10),
			strconv.FormatBool(ev.Flushed),
			strconv.Itoa(ev.Useful),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
