package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	tests := []struct {
		name     string
		cores    int
		scale    int
		procs    int
		par      int
		fuzzN    int
		fuzzSeed int64
		trips    bool
		wantErr  string // substring of the error; "" means valid
	}{
		{"defaults", 8, 2, 1, 0, 0, -1, false, ""},
		{"full-chip partition", 8, 1, 4, 4, 0, -1, false, ""},
		{"single-core partition", 1, 1, 32, 8, 0, -1, false, ""},
		{"trips baseline", 8, 2, 1, 0, 0, -1, true, ""},
		{"trips ignores cores", 3, 2, 1, 0, 0, -1, true, ""},
		{"fuzz seed replay", 8, 2, 1, 0, 0, 42, false, ""},
		{"fuzz range", 8, 2, 1, 0, 500, -1, false, ""},
		{"zero scale", 8, 0, 1, 0, 0, -1, false, "-scale"},
		{"negative par", 8, 1, 1, -1, 0, -1, false, "-par"},
		{"zero procs", 8, 1, 0, 0, 0, -1, false, "-procs"},
		{"trips multiprogram", 8, 1, 2, 0, 0, -1, true, "-procs"},
		{"negative fuzz range", 8, 1, 1, 0, -5, -1, false, "-fuzz-n"},
		{"fuzz seed and range", 8, 1, 1, 0, 10, 42, false, "-fuzz-seed"},
		{"fuzz with trips", 8, 1, 1, 0, 10, -1, true, "-trips"},
		{"bad composition size", 3, 1, 1, 0, 0, -1, false, "-cores"},
		{"partition too large", 8, 1, 5, 0, 0, -1, false, "exceeds"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.cores, tt.scale, tt.procs, tt.par, tt.fuzzN, tt.fuzzSeed, tt.trips)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %d, %d, %d, %d, %t) = %v, want nil",
						tt.cores, tt.scale, tt.procs, tt.par, tt.fuzzN, tt.fuzzSeed, tt.trips, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateFlags(%d, %d, %d, %d, %d, %d, %t) = %v, want error containing %q",
					tt.cores, tt.scale, tt.procs, tt.par, tt.fuzzN, tt.fuzzSeed, tt.trips, err, tt.wantErr)
			}
		})
	}
}

// runFuzz on a small clean seed range must succeed; the corpus gate in
// internal/fuzz covers the full range.
func TestRunFuzzCleanRange(t *testing.T) {
	if err := runFuzz(-1, 5, "", 0); err != nil {
		t.Fatalf("runFuzz(-1, 5) = %v", err)
	}
	if err := runFuzz(3, 0, "", 0); err != nil {
		t.Fatalf("runFuzz(3, 0) = %v", err)
	}
}
