package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	tests := []struct {
		name    string
		cores   int
		scale   int
		procs   int
		par     int
		trips   bool
		wantErr string // substring of the error; "" means valid
	}{
		{"defaults", 8, 2, 1, 0, false, ""},
		{"full-chip partition", 8, 1, 4, 4, false, ""},
		{"single-core partition", 1, 1, 32, 8, false, ""},
		{"trips baseline", 8, 2, 1, 0, true, ""},
		{"trips ignores cores", 3, 2, 1, 0, true, ""},
		{"zero scale", 8, 0, 1, 0, false, "-scale"},
		{"negative par", 8, 1, 1, -1, false, "-par"},
		{"zero procs", 8, 1, 0, 0, false, "-procs"},
		{"trips multiprogram", 8, 1, 2, 0, true, "-procs"},
		{"bad composition size", 3, 1, 1, 0, false, "-cores"},
		{"partition too large", 8, 1, 5, 0, false, "exceeds"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := validateFlags(tt.cores, tt.scale, tt.procs, tt.par, tt.trips)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%d, %d, %d, %d, %t) = %v, want nil",
						tt.cores, tt.scale, tt.procs, tt.par, tt.trips, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateFlags(%d, %d, %d, %d, %t) = %v, want error containing %q",
					tt.cores, tt.scale, tt.procs, tt.par, tt.trips, err, tt.wantErr)
			}
		})
	}
}
