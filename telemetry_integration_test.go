package tflex

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/clp-sim/tflex/internal/runner"
)

// TestTelemetryUnderConcurrentJobs is the tier-1 race gate for the
// telemetry layer: several runner workers execute fully instrumented
// simulations — each chip driving its own cycle sampler — while all of
// them append block spans to one shared Chrome trace and the engine
// appends its own job spans to the same trace.  Run under -race (ci.sh
// does), this exercises every concurrent surface the telemetry
// subsystem has: the Trace mutex, per-chip registries built on worker
// goroutines, and samplers advancing inside concurrent jobs.
func TestTelemetryUnderConcurrentJobs(t *testing.T) {
	shared := NewTrace()
	type out struct {
		metrics MetricsSnapshot
		rows    int
	}
	results := make([]out, 8)

	eng := &runner.Engine{Workers: 4, Trace: shared}
	eng.Exec = func(sp runner.Spec) error {
		res, err := RunKernel(sp.Kernel, 1, RunConfig{
			Cores:          sp.Cores,
			CollectMetrics: true,
			ChromeTrace:    shared,
			SampleEvery:    64,
		})
		if err != nil {
			return err
		}
		results[sp.Scale] = out{res.Metrics, res.Samples.Len()}
		return nil
	}

	// Eight distinct jobs (two kernels across the composition sizes);
	// Scale is repurposed as the job's private results-slot index, so the
	// workers never write the same element.
	var specs []runner.Spec
	for i, cores := range []int{4, 8, 16, 32} {
		specs = append(specs,
			runner.Spec{Kernel: "conv", Config: "telemetry", Cores: cores, Scale: i},
			runner.Spec{Kernel: "autcor", Config: "telemetry", Cores: cores, Scale: i + 4})
	}
	if _, err := eng.Run(specs); err != nil {
		t.Fatal(err)
	}

	for i, r := range results {
		if r.metrics == nil || r.metrics.Get("proc0.blocks.committed") == 0 {
			t.Fatalf("job %d: empty metrics snapshot", i)
		}
		if r.rows == 0 {
			t.Fatalf("job %d: sampler recorded no rows", i)
		}
	}

	// The shared trace holds every job's block spans plus the runner's
	// job spans, and still serializes to valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := shared.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("shared trace JSON invalid")
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			cats[ev.Cat]++
		}
	}
	if cats["job"] != len(specs) {
		t.Errorf("runner job spans = %d, want %d", cats["job"], len(specs))
	}
	for _, cat := range []string{"fetch", "execute", "commit"} {
		if cats[cat] == 0 {
			t.Errorf("no %s block spans in shared trace (%v)", cat, cats)
		}
	}
}
